//! The three query engines (naive over XDM, naive over storage, schema-
//! guided over storage) must agree on every query over every generated
//! document — including after random updates to the storage.

use proptest::prelude::*;
use xsdb::storage::XmlStorage;
use xsdb::xpath::{eval_guided, eval_naive, parse, XdmTree};

const QUERIES: &[&str] = &[
    "/library/book/title",
    "/library/book/author",
    "/library/paper/author",
    "//author",
    "//title",
    "//issue/year",
    "/library/book/@id",
    "/library/*[@id='b1']/title",
    "/library/book[2]/title",
    "/library/book[last()]/author",
    "/library/book[issue]/title",
    "/library/book[author]/title",
    "/library/book/title/text()",
    "/library/book/issue/..",
    "/library/nosuch/path",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn engines_agree_on_generated_libraries(books in 1usize..40, seed in 0u64..1000) {
        let (store, doc) = bench::build_library_tree(books, books / 2, seed);
        let storage = XmlStorage::from_tree(&store, doc);
        let tree = XdmTree { store: &store, doc };
        for q in QUERIES {
            let path = parse(q).unwrap();
            let xdm: Vec<String> = eval_naive(&tree, &path)
                .into_iter().map(|n| store.string_value(n)).collect();
            let st: Vec<String> = eval_naive(&&storage, &path)
                .into_iter().map(|p| storage.string_value(p)).collect();
            let guided: Vec<String> = eval_guided(&storage, &path)
                .into_iter().map(|p| storage.string_value(p)).collect();
            prop_assert_eq!(&xdm, &st, "naive engines disagree on {}", q);
            prop_assert_eq!(&st, &guided, "guided engine disagrees on {}", q);
        }
    }

    #[test]
    fn engines_agree_after_updates(
        books in 1usize..15,
        inserts in 0usize..25,
        seed in 0u64..1000,
    ) {
        let (store, doc) = bench::build_library_tree(books, 2, seed);
        let mut storage = XmlStorage::from_tree_with_capacity(&store, doc, 4);
        let lib = storage.children(storage.root())[0];
        for i in 0..inserts {
            let book = storage.insert_element(lib, None, "book").unwrap();
            let title = storage.insert_element(book, None, "title").unwrap();
            storage.insert_text(title, None, format!("new {i}")).unwrap();
            let author = storage.insert_element(book, Some(title), "author").unwrap();
            storage.insert_text(author, None, "anon").unwrap();
        }
        prop_assert_eq!(storage.check_invariants(), None);
        for q in QUERIES {
            let path = parse(q).unwrap();
            let naive: Vec<String> = eval_naive(&&storage, &path)
                .into_iter().map(|p| storage.string_value(p)).collect();
            let guided: Vec<String> = eval_guided(&storage, &path)
                .into_iter().map(|p| storage.string_value(p)).collect();
            prop_assert_eq!(&naive, &guided, "engines disagree on {} after updates", q);
        }
    }

    /// Results always come back in document order.
    #[test]
    fn results_are_in_document_order(books in 1usize..30, seed in 0u64..1000) {
        let (store, doc) = bench::build_library_tree(books, books / 2, seed);
        let storage = XmlStorage::from_tree(&store, doc);
        for q in QUERIES {
            let path = parse(q).unwrap();
            let hits = eval_guided(&storage, &path);
            for w in hits.windows(2) {
                prop_assert_eq!(
                    storage.cmp_doc_order(w[0], w[1]),
                    std::cmp::Ordering::Less,
                    "out of order for {}", q
                );
            }
        }
    }
}
