//! Property tests for the FLWOR engine: evaluation over the XDM tree and
//! the block storage must agree byte-for-byte on generated libraries and
//! a query corpus, and ordering clauses must actually sort.

use proptest::prelude::*;
use xsdb::storage::XmlStorage;
use xsdb::xpath::XdmTree;
use xsdb::xquery::{evaluate, nodes_to_string, parse_query};

const QUERIES: &[&str] = &[
    "for $b in /library/book return $b/title",
    "for $b in /library/book return <t>{$b/title/text()}</t>",
    r#"for $b in /library/book where $b/author = "codd" return $b/@id"#,
    "for $b in /library/book order by $b/title return <o>{$b/title/text()}</o>",
    "for $b in /library/book order by $b/@id descending return $b/@id",
    r#"for $b in /library/book let $t := $b/title where $b/issue return <r id="{$b/@id}">{$t}</r>"#,
    "for $a in /library/book/author return <a>{$a/text()}</a>",
    "for $p in /library/paper where $p/title return $p",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn backends_agree_on_flwor(books in 1usize..25, seed in 0u64..500) {
        let (store, doc) = bench::build_library_tree(books, books / 3, seed);
        let storage = XmlStorage::from_tree(&store, doc);
        let tree = XdmTree { store: &store, doc };
        for q in QUERIES {
            let query = parse_query(q).unwrap();
            let a = nodes_to_string(&evaluate(&tree, &query).unwrap());
            let b = nodes_to_string(&evaluate(&&storage, &query).unwrap());
            prop_assert_eq!(a, b, "backends disagree on {}", q);
        }
    }

    #[test]
    fn order_by_sorts(books in 2usize..25, seed in 0u64..500) {
        let (store, doc) = bench::build_library_tree(books, 0, seed);
        let tree = XdmTree { store: &store, doc };
        let query = parse_query(
            "for $b in /library/book order by $b/title return <t>{$b/title/text()}</t>",
        )
        .unwrap();
        let out = nodes_to_string(&evaluate(&tree, &query).unwrap());
        let titles: Vec<&str> = out
            .split("</t>")
            .filter(|s| !s.is_empty())
            .map(|s| s.trim_start_matches("<t>"))
            .collect();
        let mut sorted = titles.clone();
        sorted.sort();
        prop_assert_eq!(titles, sorted);
    }

    #[test]
    fn where_filters_are_sound_and_complete(books in 1usize..25, seed in 0u64..500) {
        // Every returned book id must satisfy the predicate, and every
        // satisfying book must be returned.
        let (store, doc) = bench::build_library_tree(books, 0, seed);
        let tree = XdmTree { store: &store, doc };
        let query = parse_query(
            r#"for $b in /library/book where $b/issue return $b/@id"#,
        )
        .unwrap();
        let out = nodes_to_string(&evaluate(&tree, &query).unwrap());
        // Ground truth via xpath.
        let with_issue = xsdb::xpath::eval_naive(
            &tree,
            &xsdb::xpath::parse("/library/book[issue]/@id").unwrap(),
        );
        let expected: String =
            with_issue.iter().map(|&n| store.string_value(n)).collect::<Vec<_>>().join("");
        prop_assert_eq!(out, expected);
    }
}
