//! Offline stand-in for the `criterion` crate.
//!
//! The container has no registry access, so this shim runs each
//! benchmark as a simple calibrated wall-clock measurement (warm-up,
//! then enough iterations to pass a minimum measurement window) and
//! prints a one-line mean per benchmark. No statistics, no HTML reports
//! — `cargo bench` still compiles and produces comparable numbers, and
//! the `experiments` binary remains the canonical table printer.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (printed alongside the mean).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId { name: format!("{function}/{parameter}") }
    }
}

/// The timing driver handed to bench closures.
pub struct Bencher {
    /// Mean wall-clock time per iteration, filled by `iter*`.
    mean: Duration,
}

const WARMUP_ITERS: u64 = 3;
const MIN_WINDOW: Duration = Duration::from_millis(200);
const MAX_ITERS: u64 = 100_000;

impl Bencher {
    /// Measure `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < MIN_WINDOW && iters < MAX_ITERS {
            black_box(routine());
            iters += 1;
        }
        self.mean = start.elapsed() / u32::try_from(iters.max(1)).expect("iteration count");
    }

    /// Measure `routine` on fresh input from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_with_setup<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
    ) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        let mut spent = Duration::ZERO;
        let mut iters = 0u64;
        while spent < MIN_WINDOW && iters < MAX_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            spent += start.elapsed();
            iters += 1;
        }
        self.mean = spent / u32::try_from(iters.max(1)).expect("iteration count");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Run one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { mean: Duration::ZERO };
        f(&mut b, input);
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if b.mean > Duration::ZERO => {
                format!("  ({:.0} elem/s)", n as f64 / b.mean.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if b.mean > Duration::ZERO => {
                format!("  ({:.0} B/s)", n as f64 / b.mean.as_secs_f64())
            }
            _ => String::new(),
        };
        println!("{}/{}  mean {:?}{}", self.name, id.name, b.mean, rate);
        self.criterion.benchmarks_run += 1;
    }

    /// Run one benchmark with no extra input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, mut f: F) {
        let mut b = Bencher { mean: Duration::ZERO };
        f(&mut b);
        println!("{}/{}  mean {:?}", self.name, id.name, b.mean);
        self.criterion.benchmarks_run += 1;
    }

    /// End the group.
    pub fn finish(self) {}
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// A fresh driver.
    pub fn new() -> Self {
        Criterion::default()
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup { criterion: self, name, throughput: None }
    }
}

/// Collect bench functions into a group runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::new();
            $($group(&mut criterion);)+
        }
    };
}
