//! Offline stand-in for the `proptest` crate.
//!
//! This container has no network access and no cargo registry cache, so
//! the real `proptest` cannot be downloaded. This shim implements the
//! subset of the proptest API that the workspace's property tests use,
//! with deterministic (seeded) case generation instead of shrinking:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_flat_map`,
//!   `prop_filter`, and `boxed`;
//! * strategies for integer ranges, tuples, `Vec<Strategy>`, [`Just`],
//!   char ranges, `any::<T>()`, regex-like `&str` literals (character
//!   classes with `{n,m}` quantifiers), and `collection::vec`;
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros;
//! * [`test_runner::ProptestConfig`] with `with_cases`.
//!
//! Failures report the case number and the seed so a run can be
//! reproduced; there is no shrinking (the generators in this repo are
//! already small and structured).

#![warn(missing_docs)]

pub mod test_runner {
    //! Configuration and the per-test deterministic runner state.

    use std::fmt;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed property case (produced by the `prop_assert*` macros).
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        /// A failure with the given message.
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.message)
        }
    }

    /// Deterministic splitmix64 generator seeding each test case.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG for case `case` of the test named `name`.
        pub fn for_case(name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15) }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (`n` must be non-zero).
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "empty range");
            // Rejection-free multiply-shift; bias is negligible for test
            // generation purposes.
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values for property tests.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, build a second strategy from it, generate
        /// from that.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { inner: self, f }
        }

        /// Retry generation until `pred` holds (up to an attempt cap).
        fn prop_filter<F>(self, whence: impl Into<String>, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, whence: whence.into(), pred }
        }

        /// Type-erase the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Object-safe generation, backing [`BoxedStrategy`].
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy (the result of [`Strategy::boxed`]).
    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    #[derive(Debug, Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// See [`Strategy::prop_filter`].
    #[derive(Debug, Clone)]
    pub struct Filter<S, F> {
        inner: S,
        whence: String,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter {:?}: 1000 rejections in a row", self.whence);
        }
    }

    /// Weighted choice between type-erased alternatives
    /// (what [`prop_oneof!`](crate::prop_oneof) builds).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// A union of `(weight, strategy)` arms.
        pub fn new_weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! weights sum to zero");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weighted pick out of range")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! int128_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as u128;
                    let span = u64::try_from(span)
                        .expect("128-bit range strategies wider than u64 are unsupported");
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int128_range_strategy!(u128, i128);

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!((A)(A, B)(A, B, C)(A, B, C, D)(A, B, C, D, E));

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// `&str` literals act as regex-like string strategies. Supported
    /// syntax: character classes `[a-z0-9_.-]` (ranges, escapes `\t`,
    /// `\n`, `\r`, `\\`, a trailing literal `-`), bare literal
    /// characters, and `{n}` / `{n,m}` quantifiers.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let parts = parse_pattern(self);
            let mut out = String::new();
            for part in &parts {
                let n = if part.min == part.max {
                    part.min
                } else {
                    part.min + rng.below((part.max - part.min + 1) as u64) as usize
                };
                for _ in 0..n {
                    out.push(part.class.pick(rng));
                }
            }
            out
        }
    }

    #[derive(Debug, Clone)]
    struct CharClass {
        /// Inclusive ranges; a single char is a degenerate range.
        ranges: Vec<(char, char)>,
        total: u64,
    }

    impl CharClass {
        fn single(c: char) -> Self {
            CharClass { ranges: vec![(c, c)], total: 1 }
        }

        fn from_ranges(ranges: Vec<(char, char)>) -> Self {
            let total = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
            assert!(total > 0, "empty character class");
            CharClass { ranges, total }
        }

        fn pick(&self, rng: &mut TestRng) -> char {
            let mut k = rng.below(self.total);
            for &(lo, hi) in &self.ranges {
                let span = hi as u64 - lo as u64 + 1;
                if k < span {
                    // Surrogate gaps never occur in the classes this
                    // workspace uses (ASCII + a few literals).
                    return char::from_u32(lo as u32 + k as u32).expect("valid scalar");
                }
                k -= span;
            }
            unreachable!("class pick out of range")
        }
    }

    #[derive(Debug, Clone)]
    struct PatternPart {
        class: CharClass,
        min: usize,
        max: usize,
    }

    fn unescape(c: char) -> char {
        match c {
            't' => '\t',
            'n' => '\n',
            'r' => '\r',
            other => other,
        }
    }

    fn parse_pattern(pat: &str) -> Vec<PatternPart> {
        let mut chars = pat.chars().peekable();
        let mut parts = Vec::new();
        while let Some(c) = chars.next() {
            let class = if c == '[' {
                let mut ranges = Vec::new();
                loop {
                    let item = chars.next().expect("unterminated character class");
                    if item == ']' {
                        break;
                    }
                    let item = if item == '\\' {
                        unescape(chars.next().expect("dangling escape"))
                    } else {
                        item
                    };
                    // `X-Y` is a range unless `-` is the last class char.
                    if chars.peek() == Some(&'-') {
                        let mut ahead = chars.clone();
                        ahead.next();
                        match ahead.peek() {
                            Some(&']') | None => ranges.push((item, item)),
                            Some(_) => {
                                chars.next(); // consume '-'
                                let hi = chars.next().expect("unterminated range");
                                let hi =
                                    if hi == '\\' { unescape(chars.next().unwrap()) } else { hi };
                                assert!(item <= hi, "inverted range in {pat:?}");
                                ranges.push((item, hi));
                            }
                        }
                    } else {
                        ranges.push((item, item));
                    }
                }
                CharClass::from_ranges(ranges)
            } else if c == '\\' {
                CharClass::single(unescape(chars.next().expect("dangling escape")))
            } else {
                CharClass::single(c)
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut spec = String::new();
                for q in chars.by_ref() {
                    if q == '}' {
                        break;
                    }
                    spec.push(q);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad quantifier"),
                        hi.trim().parse().expect("bad quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad quantifier");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            assert!(min <= max, "inverted quantifier in {pat:?}");
            parts.push(PatternPart { class, min, max });
        }
        parts
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types the workspace generates.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generate an arbitrary value of the type.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// A strategy over the whole domain of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec` and the size specification it accepts.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Length specification: an exact size or a half-open range.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { min: *r.start(), max: *r.end() + 1 }
        }
    }

    /// The strategy returned by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.max - self.size.min) as u64;
            let n = self.size.min + rng.below(span.max(1)) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector of values from `element`, sized per `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod char {
    //! Character strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`range`].
    #[derive(Debug, Clone)]
    pub struct CharRange {
        lo: char,
        hi: char,
    }

    impl Strategy for CharRange {
        type Value = char;
        fn generate(&self, rng: &mut TestRng) -> char {
            let span = self.hi as u64 - self.lo as u64 + 1;
            char::from_u32(self.lo as u32 + rng.below(span) as u32).expect("valid scalar")
        }
    }

    /// Characters in `lo..=hi` (both inclusive, like proptest).
    pub fn range(lo: char, hi: char) -> CharRange {
        assert!(lo <= hi, "inverted char range");
        CharRange { lo, hi }
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with ($cfg) $($rest)*);
    };
    (@with ($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..u64::from(config.cases) {
                let mut rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("property {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Weighted (`w => strategy`) or uniform choice between strategies with a
/// common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Assert a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Assert inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "{} (both {:?})",
                format!($($fmt)+), l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn pattern_strategy_matches_its_own_grammar() {
        let mut rng = TestRng::for_case("pattern", 7);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z][a-z0-9_.-]{0,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            let mut cs = s.chars();
            assert!(cs.next().unwrap().is_ascii_lowercase());
            assert!(cs.all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || matches!(c, '_' | '.' | '-')));
        }
        for _ in 0..200 {
            let s = Strategy::generate(&"[ -~]{0,80}", &mut rng);
            assert!(s.len() <= 80);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
        for _ in 0..200 {
            let s = Strategy::generate(&"[ \\t\\n\\ra-z]{0,60}", &mut rng);
            assert!(s.chars().all(|c| matches!(c, ' ' | '\t' | '\n' | '\r' | 'a'..='z')));
        }
    }

    #[test]
    fn ranges_and_vec_sizes_respect_bounds() {
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..500 {
            let v = Strategy::generate(&(3usize..7), &mut rng);
            assert!((3..7).contains(&v));
            let w = Strategy::generate(&(-1000i32..1000), &mut rng);
            assert!((-1000..1000).contains(&w));
            let xs = Strategy::generate(&crate::collection::vec(0u8..3, 1..12), &mut rng);
            assert!((1..12).contains(&xs.len()));
            assert!(xs.iter().all(|&x| x < 3));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_runs(x in 0u64..100, s in "[a-z]{1,4}") {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), s.chars().count());
            prop_assert_ne!(s.len(), 0);
        }

        #[test]
        fn oneof_and_combinators(v in prop_oneof![
            2 => (0usize..5).prop_map(|n| n * 2),
            1 => Just(99usize),
        ]) {
            prop_assert!(v == 99 || (v % 2 == 0 && v < 10));
        }
    }
}
