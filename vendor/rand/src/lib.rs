//! Offline stand-in for the `rand` crate.
//!
//! The container has no registry access, so this shim supplies the small
//! API surface the workload generators use: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], plus [`RngExt::random_range`] and
//! [`RngExt::random_bool`]. The generator is splitmix64 — deterministic
//! per seed, which is all the benchmark workloads require (they fix
//! seeds so every run measures the same documents).

#![warn(missing_docs)]

use std::ops::Range;

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Seed deterministically from a `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// A uniform value in `range` using `rng`'s raw output.
    fn sample(rng: &mut rngs::StdRng, range: Range<Self>) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample(rng: &mut rngs::StdRng, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as i128 - range.start as i128) as u64;
                (range.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The sampling methods (rand 0.9+ naming: `random_*`).
pub trait RngExt {
    /// Uniform value in the half-open `range`.
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T;
    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool;
}

pub mod rngs {
    //! The concrete generators.

    use super::{RngExt, SampleUniform, SeedableRng};
    use std::ops::Range;

    /// Deterministic splitmix64 generator (stand-in for rand's ChaCha12
    /// `StdRng`; statistical quality is irrelevant for seeded workload
    /// generation, determinism is what matters).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl StdRng {
        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        pub(crate) fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0, "empty range");
            ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ 0x5851_f42d_4c95_7f2d }
        }
    }

    impl RngExt for StdRng {
        fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
            T::sample(self, range)
        }

        fn random_bool(&mut self, p: f64) -> bool {
            assert!((0.0..=1.0).contains(&p), "probability out of range");
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_and_bool_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(10usize..20);
            assert!((10..20).contains(&v));
            let w = rng.random_range(-5i32..5);
            assert!((-5..5).contains(&w));
        }
        assert!(!(0..1000).all(|_| rng.random_bool(0.5)));
        assert!((0..1000).all(|_| rng.random_bool(1.0)));
        assert!(!(0..1000).any(|_| rng.random_bool(0.0)));
    }
}
